package stats

import (
	"encoding/json"
	"sort"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c++ // hot paths may use plain arithmetic
	if c.Get() != 6 {
		t.Fatalf("counter = %d, want 6", c.Get())
	}
	var g Gauge
	g.Set(-3)
	if g.Get() != -3 {
		t.Fatalf("gauge = %d, want -3", g.Get())
	}
}

func TestRegistrySnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	var a, b Counter
	var g Gauge
	core := r.Root().Sub("core1")
	core.Counter(&b, "zz_last", "registered first, sorts last")
	core.Counter(&a, "aa_first", "registered second, sorts first")
	core.Sub("rob").Gauge(&g, "occupancy_max", "peak occupancy")
	r.Root().Sub("machine").Derived("total", "a+b", func() uint64 { return a.Get() + b.Get() })
	r.Root().Sub("machine").Formula("ratio", "a over b", func() float64 {
		if b == 0 {
			return 0
		}
		return float64(a) / float64(b)
	})

	a.Add(2)
	b.Add(8)
	g.Set(5)

	snap := r.Snapshot()
	if snap.Schema != SnapshotSchema {
		t.Fatalf("schema = %d, want %d", snap.Schema, SnapshotSchema)
	}
	if !sort.SliceIsSorted(snap.Samples, func(i, j int) bool { return snap.Samples[i].Name < snap.Samples[j].Name }) {
		t.Fatal("snapshot not sorted by name")
	}
	if got := snap.Value("core1.aa_first"); got != 2 {
		t.Errorf("aa_first = %d, want 2", got)
	}
	if got := snap.Value("core1.rob.occupancy_max"); got != 5 {
		t.Errorf("occupancy_max = %d, want 5", got)
	}
	if got := snap.UValue("machine.total"); got != 10 {
		t.Errorf("derived total = %d, want 10", got)
	}
	if got := snap.Float("machine.ratio"); got != 0.25 {
		t.Errorf("formula ratio = %v, want 0.25", got)
	}
	if _, ok := snap.Lookup("nope"); ok {
		t.Error("Lookup found an unregistered stat")
	}
	if snap.Value("nope") != 0 {
		t.Error("absent stat should read 0")
	}
}

func TestSnapshotEqual(t *testing.T) {
	r := NewRegistry()
	var c Counter
	r.Root().Counter(&c, "x", "")
	s1 := r.Snapshot()
	if !s1.Equal(r.Snapshot()) {
		t.Fatal("identical snapshots not equal")
	}
	c.Inc()
	if s1.Equal(r.Snapshot()) {
		t.Fatal("diverged snapshots reported equal")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	var c Counter
	c.Add(42)
	r.Root().Sub("core0").Counter(&c, "cycles", "active cycles")
	snap := r.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !snap.Equal(back) {
		t.Fatalf("round trip diverged:\n%+v\n%+v", snap, back)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	var a, b Counter
	r.Root().Counter(&a, "x", "")
	r.Root().Counter(&b, "x", "")
}

func TestInvalidNamePanics(t *testing.T) {
	bad := []string{"", "Upper", "has space", "trailing.", ".leading", "a..b", "dash-ed"}
	for _, name := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", name)
				}
			}()
			r := NewRegistry()
			var c Counter
			r.Root().Counter(&c, name, "")
		}()
	}
}

func TestSnapshotDiff(t *testing.T) {
	base := Snapshot{Schema: SnapshotSchema, Samples: []Sample{
		{Name: "a.count", Kind: KindCounter, Value: 5},
		{Name: "b.ratio", Kind: KindFormula, Float: 0.5},
		{Name: "c.gone", Kind: KindCounter, Value: 1},
	}}
	fresh := Snapshot{Schema: SnapshotSchema, Samples: []Sample{
		{Name: "a.count", Kind: KindCounter, Value: 7},
		{Name: "b.ratio", Kind: KindFormula, Float: 0.5},
		{Name: "d.new", Kind: KindGauge, Value: -2},
	}}
	ds := fresh.Diff(base)
	if len(ds) != 3 {
		t.Fatalf("got %d deltas %v, want 3", len(ds), ds)
	}
	if ds[0].Change != "changed" || ds[0].Name != "a.count" || ds[0].Old.Value != 5 || ds[0].New.Value != 7 {
		t.Errorf("delta 0 = %+v, want a.count 5 -> 7", ds[0])
	}
	if ds[1].Change != "removed" || ds[1].Name != "c.gone" {
		t.Errorf("delta 1 = %+v, want c.gone removed", ds[1])
	}
	if ds[2].Change != "added" || ds[2].Name != "d.new" {
		t.Errorf("delta 2 = %+v, want d.new added", ds[2])
	}
	if s := ds[0].String(); s != "a.count 5 -> 7" {
		t.Errorf("String() = %q", s)
	}
}

func TestSnapshotDiffEmptyOnEqual(t *testing.T) {
	r := NewRegistry()
	var c Counter
	r.Root().Counter(&c, "x", "test counter")
	c.Add(3)
	a, b := r.Snapshot(), r.Snapshot()
	if ds := a.Diff(b); len(ds) != 0 {
		t.Errorf("identical snapshots diff to %v", ds)
	}
	if !a.Equal(b) {
		t.Error("identical snapshots not Equal")
	}
}
