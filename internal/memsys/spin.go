package memsys

import "sfence/internal/stats"

// Spin-detector support: the cpu layer's spin fast-forward needs to (a)
// observe whether a core's view of the hierarchy changed between loop
// iterations, and (b) credit the per-core memory counters for skipped
// iterations exactly as live iterations would have. Versions answer (a);
// the snapshot/delta/credit trio answers (b).

// CoreVersion returns core's perturbation version: it advances on every
// hierarchy mutation that could change the core's future timing — any
// access by the core that is not an idempotent private hit, and any
// remote invalidation or downgrade of the core's private copies. A spin
// iteration that leaves the version unchanged touched nothing but
// already-MRU private lines.
func (h *Hierarchy) CoreVersion(core int) uint64 { return h.ver[core] }

// SnapshotCoreStats deep-copies core's counters (the Level slice is
// cloned) so a caller can later take an exact delta.
func (h *Hierarchy) SnapshotCoreStats(core int) CoreStats {
	s := h.stats[core]
	s.Level = append([]LevelStats(nil), s.Level...)
	return s
}

// DeltaCoreStats returns the counter growth since anchor (which must be a
// SnapshotCoreStats result for the same core).
func (h *Hierarchy) DeltaCoreStats(core int, anchor CoreStats) CoreStats {
	cur := &h.stats[core]
	d := CoreStats{
		Loads:         cur.Loads - anchor.Loads,
		Stores:        cur.Stores - anchor.Stores,
		Level:         make([]LevelStats, len(cur.Level)),
		Upgrades:      cur.Upgrades - anchor.Upgrades,
		Invalidations: cur.Invalidations - anchor.Invalidations,
		Writebacks:    cur.Writebacks - anchor.Writebacks,
		RemoteDirty:   cur.RemoteDirty - anchor.RemoteDirty,
	}
	for k := range cur.Level {
		d.Level[k].Hits = cur.Level[k].Hits - anchor.Level[k].Hits
		d.Level[k].Misses = cur.Level[k].Misses - anchor.Level[k].Misses
	}
	return d
}

// CreditCoreStats adds d×times into core's live counters — the memory
// side of crediting `times` skipped spin periods.
func (h *Hierarchy) CreditCoreStats(core int, d CoreStats, times uint64) {
	cur := &h.stats[core]
	t := stats.Counter(times)
	cur.Loads += d.Loads * t
	cur.Stores += d.Stores * t
	for k := range cur.Level {
		cur.Level[k].Hits += d.Level[k].Hits * t
		cur.Level[k].Misses += d.Level[k].Misses * t
	}
	cur.Upgrades += d.Upgrades * t
	cur.Invalidations += d.Invalidations * t
	cur.Writebacks += d.Writebacks * t
	cur.RemoteDirty += d.RemoteDirty * t
}
