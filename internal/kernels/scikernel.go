package kernels

import (
	"fmt"

	"sfence/internal/isa"
	"sfence/internal/machine"
	"sfence/internal/memsys"
	"sfence/internal/scopecheck"
)

func init() {
	register(Info{
		Name:        "barnes",
		ScopeType:   "set",
		Group:       "full-app",
		Description: "Synthetic SPLASH-2 barnes-hut stand-in: SC enforced by delay-set-flagged accesses and set-scoped fences; gather-heavy, low locality",
		Build: func(opts Options) (*Kernel, error) {
			return buildSCIKernel("barnes", sciParams{
				posWords:   1 << 18, // 2 MiB shared read-only positions: gathers miss
				gathers:    8,
				bodies:     48,
				iters:      3,
				fencePairs: 1,
				accWords:   32768, // 256 KiB private accumulators: stores miss
				accStride:  67,    // line-jumping store pattern
				computeOps: 6,
			}, opts)
		},
	})
	register(Info{
		Name:        "radiosity",
		ScopeType:   "set",
		Group:       "full-app",
		Description: "Synthetic SPLASH-2 radiosity stand-in: higher fence density, moderate gather volume (delay-set SC enforcement with set scope)",
		Build: func(opts Options) (*Kernel, error) {
			return buildSCIKernel("radiosity", sciParams{
				posWords:   1 << 17,
				gathers:    4,
				bodies:     48,
				iters:      4,
				fencePairs: 2,
				accWords:   16384,
				accStride:  53,
				computeOps: 4,
			}, opts)
		},
	})
}

// sciParams shape the synthetic SC-enforcement kernels standing in for the
// SPLASH-2 applications (see DESIGN.md, substitution notes). The paper ran
// barnes and radiosity with compiler-inserted fences enforcing sequential
// consistency via delay set analysis; what matters for the experiment is
// the access structure: a large volume of private/read-only traffic with
// poor locality, punctuated by fences that — under set scope — only order
// the delay-set (conflicting, shared) accesses.
type sciParams struct {
	posWords   int64 // shared read-only position table size (words)
	gathers    int   // scattered reads per body
	bodies     int   // bodies per thread per iteration
	iters      int   // phase iterations
	fencePairs int   // flagged store+fence+flagged load groups per body
	accWords   int64 // per-thread private accumulator region (words)
	accStride  int64 // accumulator index stride (lines apart)
	computeOps int   // arithmetic ops between gather and update
}

// buildSCIKernel emits the shared skeleton: per body, gather `gathers`
// pseudo-random positions (unflagged loads — not in any delay set), update
// a private accumulator slot (unflagged store — the long-latency access a
// traditional fence needlessly waits for), then perform `fencePairs`
// communication rounds: a flagged store to the thread's slot, an S-Fence
// with set scope, and a flagged load of a peer's slot.
func buildSCIKernel(name string, prm sciParams, opts Options) (*Kernel, error) {
	opts = opts.withDefaults(8, prm.bodies, 0)
	if opts.Threads < 2 || opts.Threads > 16 {
		return nil, fmt.Errorf("%s: threads %d out of range [2,16]", name, opts.Threads)
	}
	s := newScopeCtx(opts, isa.ScopeSet)
	if s.kind != isa.ScopeSet {
		return nil, fmt.Errorf("%s: only set scope applies (delay-set flagged accesses)", name)
	}
	bodies := int64(opts.Ops)

	lay := memsys.NewLayout(4096, 56<<20)
	pos := lay.Array("pos", prm.posWords)
	lay.AlignTo(64)
	comm := lay.Array("comm", int64(opts.Threads)*8) // one line per slot
	acc := make([]int64, opts.Threads)
	resSlot := make([]int64, opts.Threads)
	for t := 0; t < opts.Threads; t++ {
		lay.AlignTo(64)
		acc[t] = lay.Array(fmt.Sprintf("acc%d", t), prm.accWords)
		lay.AlignTo(64)
		resSlot[t] = lay.Word(fmt.Sprintf("res%d", t))
	}

	const (
		rPos   = isa.R20
		rAcc   = isa.R21
		rMine  = isa.R22 // own comm slot address
		rPeer  = isa.R23 // peer comm slot address
		rRes   = isa.R24
		rX     = isa.R25 // LCG state
		rIter  = isa.R26
		rBody  = isa.R27
		rSum   = isa.R28
		rIdx   = isa.R29
		rA     = isa.R30
		rTotal = isa.R31
		rSink  = isa.R32
		rG     = isa.R33
		rBI    = isa.R34
	)

	posMask := prm.posWords - 1
	accMask := prm.accWords - 1

	b := isa.NewBuilder()
	b.Entry("worker")
	b.Inline(func(b *isa.Builder) {
		b.MovI(rTotal, 0)
		b.MovI(rSink, 0)
		b.MovI(rIter, int64(prm.iters))
		b.Label("iterloop")
		b.MovI(rBody, 0)
		b.Label("bodyloop")
		// Gather: scattered read-only loads, deliberately unflagged
		// (never in a delay set).
		b.MovI(rSum, 0)
		b.MovI(rG, int64(prm.gathers))
		b.Label("gather")
		emitLCG(b, rX, rIdx, posMask)
		b.ShlI(rIdx, rIdx, 3)
		b.Add(rA, rPos, rIdx)
		b.Load(rIdx, rA, 0)
		b.Add(rSum, rSum, rIdx)
		b.AddI(rG, rG, -1)
		b.Bne(rG, isa.R0, "gather")
		// Compute.
		for i := 0; i < prm.computeOps; i++ {
			b.Mul(rIdx, rSum, rSum)
			b.ShrI(rIdx, rIdx, 11)
			b.Xor(rSum, rSum, rIdx)
		}
		b.Add(rTotal, rTotal, rSum)
		// Private accumulator store: long latency, unflagged, and with
		// a register-sourced value — it drains while the set-scoped
		// fence below proceeds, but a traditional fence waits for it.
		b.MovI(rIdx, prm.accStride*8)
		b.Mul(rIdx, rBody, rIdx)
		b.AndI(rIdx, rIdx, accMask*8)
		b.AndI(rIdx, rIdx, -8)
		b.Add(rA, rAcc, rIdx)
		b.Store(rA, 0, rSum)
		// Delay-set communication rounds.
		for fp := 0; fp < prm.fencePairs; fp++ {
			s.shared(b)
			b.Store(rMine, 0, rSum)
			s.fence(b)
			s.shared(b)
			b.Load(rBI, rPeer, 0)
			b.Add(rSink, rSink, rBI)
		}
		b.AddI(rBody, rBody, 1)
		b.MovI(rIdx, bodies)
		b.Blt(rBody, rIdx, "bodyloop")
		b.AddI(rIter, rIter, -1)
		b.Bne(rIter, isa.R0, "iterloop")
		b.Store(rRes, 0, rTotal)
		b.Halt()
	})
	p, err := b.Build()
	if err != nil {
		return nil, err
	}

	posVal := func(i int64) int64 { return (i*2654435761 + 12345) & 0xffff }
	threads := make([]machine.Thread, opts.Threads)
	expect := make([]int64, opts.Threads)
	for t := 0; t < opts.Threads; t++ {
		seed := opts.Seed*1000003 + int64(t)*7919
		threads[t] = machine.Thread{Entry: "worker", Regs: map[isa.Reg]int64{
			rPos: pos, rAcc: acc[t],
			rMine: comm + int64(t)*64,
			rPeer: comm + int64((t+1)%opts.Threads)*64,
			rRes:  resSlot[t], rX: seed,
		}}
		// Mirror the kernel in Go to compute the expected checksum.
		x := seed
		var total int64
		for it := 0; it < prm.iters; it++ {
			for body := int64(0); body < bodies; body++ {
				var sum int64
				for g := 0; g < prm.gathers; g++ {
					var idx int64
					x, idx = lcgNext(x, posMask)
					sum += posVal(idx)
				}
				for i := 0; i < prm.computeOps; i++ {
					sum ^= (sum * sum) >> 11
				}
				total += sum
			}
		}
		expect[t] = total
	}

	return &Kernel{
		Name:    name,
		Program: p,
		Regions: regionsFor(lay, func(rn string) (scopecheck.Sharing, int) {
			if rn == "pos" {
				return scopecheck.ReadShared, -1
			}
			if t, ok := ownedSuffix(rn, "acc"); ok {
				return scopecheck.Private, t
			}
			if t, ok := ownedSuffix(rn, "res"); ok {
				return scopecheck.Private, t
			}
			return scopecheck.SharedRW, -1
		}),
		Threads: threads,
		InitImage: func(img *memsys.Image) {
			for i := int64(0); i < prm.posWords; i++ {
				img.Store(pos+i*8, posVal(i))
			}
		},
		Verify: func(img *memsys.Image) error {
			for t := 0; t < opts.Threads; t++ {
				if got := img.Load(resSlot[t]); got != expect[t] {
					return fmt.Errorf("%s: thread %d checksum = %d, want %d", name, t, got, expect[t])
				}
			}
			return nil
		},
	}, nil
}
