package cpu

// scopeHW implements the paper's per-core fence-scoping hardware: the
// cid -> FSB-entry mapping table, the fence scope stack (FSS), its shadow
// copy (FSS'), and the overflow counter engaged when the mapping table or
// FSS is full.
//
// FSB entry indices partition as: entries [0, setEntry) hold class scopes;
// entry setEntry (the last one) is reserved for set-scope accesses, exactly
// as suggested in Section V of the paper.
type scopeHW struct {
	cfg *Config

	// mapping table: cid -> FSB entry, with a use flag per slot.
	mapCID   []int64
	mapEntry []uint8
	mapUsed  []bool

	fss    []uint8 // fence scope stack of FSB entry indices
	shadow []uint8 // FSS'

	// overflow counts fs_starts encountered while the MT/FSS was full;
	// while non-zero every fence behaves as a traditional full fence.
	overflow       int
	shadowOverflow int

	// shadowLag is set when a scope operation was not mirrored to FSS'
	// because an unconfirmed branch preceded it. After a recovery from a
	// lagging shadow, fences are forced global until the FSS drains (a
	// conservative guard the paper leaves implicit).
	shadowLag bool
	forceFull bool

	// outstanding access counters, split by residence, per FSB entry:
	// robCnt counts incomplete memory ops in the ROB carrying the bit;
	// robLoadCnt counts only incomplete loads/CAS (for load-load
	// fences); sbCnt counts store-buffer entries carrying the bit.
	robCnt     []int
	robLoadCnt []int
	sbCnt      []int

	stats *Stats
}

func newScopeHW(cfg *Config, stats *Stats) *scopeHW {
	return &scopeHW{
		cfg:        cfg,
		mapCID:     make([]int64, cfg.MapEntries),
		mapEntry:   make([]uint8, cfg.MapEntries),
		mapUsed:    make([]bool, cfg.MapEntries),
		fss:        make([]uint8, 0, cfg.FSSEntries),
		shadow:     make([]uint8, 0, cfg.FSSEntries),
		robCnt:     make([]int, cfg.FSBEntries),
		robLoadCnt: make([]int, cfg.FSBEntries),
		sbCnt:      make([]int, cfg.FSBEntries),
		stats:      stats,
	}
}

// setEntry returns the FSB entry index reserved for set scope.
func (s *scopeHW) setEntry() uint8 { return uint8(s.cfg.FSBEntries - 1) }

// setBit returns the FSB bitmask of the reserved set-scope entry.
func (s *scopeHW) setBit() uint8 { return 1 << s.setEntry() }

// classEntries returns how many FSB entries are available for class scopes.
func (s *scopeHW) classEntries() int { return s.cfg.FSBEntries - 1 }

// lookupMap returns the mapping-table slot for cid, or -1.
func (s *scopeHW) lookupMap(cid int64) int {
	for i := range s.mapCID {
		if s.mapUsed[i] && s.mapCID[i] == cid {
			return i
		}
	}
	return -1
}

// entryInUse reports whether FSB entry e is referenced by any live mapping
// or stack slot.
func (s *scopeHW) entryInUse(e uint8) bool {
	for i := range s.mapUsed {
		if s.mapUsed[i] && s.mapEntry[i] == e {
			return true
		}
	}
	for _, x := range s.fss {
		if x == e {
			return true
		}
	}
	return false
}

// freeEntry returns an unused class-scope FSB entry, or -1 if none.
func (s *scopeHW) freeEntry() int {
	for e := 0; e < s.classEntries(); e++ {
		if !s.entryInUse(uint8(e)) {
			return e
		}
	}
	return -1
}

// releaseIdleMappings invalidates mapping-table slots whose FSB entry has
// no outstanding accesses and is no longer on the FSS — the paper's "when
// bits in the same entry for all FSBs have been cleared, … invalidate the
// mapping information".
func (s *scopeHW) releaseIdleMappings() {
	for i := range s.mapUsed {
		if !s.mapUsed[i] {
			continue
		}
		e := s.mapEntry[i]
		if s.robCnt[e] != 0 || s.sbCnt[e] != 0 {
			continue
		}
		onStack := false
		for _, x := range s.fss {
			if x == e {
				onStack = true
				break
			}
		}
		if !onStack {
			s.mapUsed[i] = false
		}
	}
}

// fsStart handles an fs_start cid at decode. shadowOK reports whether no
// unconfirmed branch precedes the instruction (the FSS' update condition).
func (s *scopeHW) fsStart(cid int64, shadowOK bool) {
	if s.overflow > 0 {
		s.overflow++
		if shadowOK {
			s.shadowOverflow++
		} else {
			s.shadowLag = true
		}
		return
	}
	s.releaseIdleMappings()

	slot := s.lookupMap(cid)
	var entry uint8
	switch {
	case slot >= 0:
		entry = s.mapEntry[slot]
	default:
		if len(s.fss) >= s.cfg.FSSEntries || s.freeMapSlot() < 0 {
			// Mapping table or FSS full: engage the overflow counter;
			// fences behave as full fences until it drains.
			s.overflow++
			s.stats.ScopeOverflow++
			if shadowOK {
				s.shadowOverflow++
			} else {
				s.shadowLag = true
			}
			return
		}
		if e := s.freeEntry(); e >= 0 {
			entry = uint8(e)
		} else {
			// All class entries busy: share the designated entry 0
			// (strictly more conservative, still correct).
			entry = 0
			s.stats.ScopeShared++
		}
		ms := s.freeMapSlot()
		s.mapCID[ms] = cid
		s.mapEntry[ms] = entry
		s.mapUsed[ms] = true
	}

	if len(s.fss) >= s.cfg.FSSEntries {
		s.overflow++
		s.stats.ScopeOverflow++
		if shadowOK {
			s.shadowOverflow++
		} else {
			s.shadowLag = true
		}
		return
	}
	s.fss = append(s.fss, entry)
	if shadowOK {
		s.syncShadow()
	} else {
		s.shadowLag = true
	}
}

func (s *scopeHW) freeMapSlot() int {
	for i := range s.mapUsed {
		if !s.mapUsed[i] {
			return i
		}
	}
	return -1
}

// fsEnd handles an fs_end at decode.
func (s *scopeHW) fsEnd(shadowOK bool) {
	if s.overflow > 0 {
		s.overflow--
		if shadowOK && s.shadowOverflow > 0 {
			s.shadowOverflow--
		}
		return
	}
	if len(s.fss) == 0 {
		// Wrong-path or mismatched fs_end; ignore.
		s.stats.FSEndIgnored++
		return
	}
	s.fss = s.fss[:len(s.fss)-1]
	if shadowOK {
		s.syncShadow()
	} else {
		s.shadowLag = true
	}
}

// syncShadow copies FSS into FSS' (used when a scope op executes with no
// unconfirmed branches: the shadow catches up completely).
func (s *scopeHW) syncShadow() {
	s.shadow = append(s.shadow[:0], s.fss...)
	s.shadowOverflow = s.overflow
	s.shadowLag = false
}

// currentMask returns the FSB bits a newly decoded memory operation must
// set: one bit per scope on the FSS (inner scopes imply outer ones).
func (s *scopeHW) currentMask() uint8 {
	var m uint8
	for _, e := range s.fss {
		m |= 1 << e
	}
	return m
}

// fenceClassEntry returns the FSB entry a class fence must check, and
// whether the fence must instead behave as a full fence (overflow engaged,
// FSS empty, or post-recovery guard).
func (s *scopeHW) fenceClassEntry() (uint8, bool) {
	if s.overflow > 0 || len(s.fss) == 0 || s.forceFull {
		return 0, true
	}
	return s.fss[len(s.fss)-1], false
}

// fenceSetFull reports whether a set fence must behave as a full fence.
func (s *scopeHW) fenceSetFull() bool {
	return s.forceFull
}

// snapshot returns a compact copy of the FSS and overflow counter, used by
// RecoverySnapshot to checkpoint at branches.
func (s *scopeHW) snapshot() fssSnapshot {
	var snap fssSnapshot
	snap.depth = uint8(len(s.fss))
	copy(snap.entries[:], s.fss)
	snap.overflow = s.overflow
	return snap
}

// restoreSnapshot restores an exact checkpoint.
func (s *scopeHW) restoreSnapshot(snap fssSnapshot) {
	s.fss = append(s.fss[:0], snap.entries[:snap.depth]...)
	s.overflow = snap.overflow
	s.forceFull = false
}

// restoreShadow implements the paper's recovery: FSS <- FSS'. If the shadow
// was lagging, fences are forced to full-fence behaviour until the stack
// drains (see shadowLag).
func (s *scopeHW) restoreShadow() {
	s.fss = append(s.fss[:0], s.shadow...)
	s.overflow = s.shadowOverflow
	if s.shadowLag {
		s.forceFull = true
	}
}

// drainGuard clears the post-recovery full-fence guard once the FSS is
// empty again.
func (s *scopeHW) drainGuard() {
	if s.forceFull && len(s.fss) == 0 && s.overflow == 0 {
		s.forceFull = false
		s.shadowLag = false
		s.syncShadow()
	}
}

type fssSnapshot struct {
	entries  [8]uint8
	depth    uint8
	overflow int
}
